# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml), so a green `make check` locally means a
# green pipeline — except the staticcheck job, which needs the tool
# installed (see the staticcheck target below).

.PHONY: build test race check fmt vet bench fuzz examples staticcheck

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

fmt:
	gofmt -l .

vet:
	go vet ./...

# race already executes the examples once via the root package's
# TestExamplesBuildAndRun smoke, so check does not repeat them.
check: vet build race

# examples builds and runs every examples/* program — executable
# documentation of the public blobvfs API. Each must exit cleanly.
examples:
	go build ./examples/...
	go run ./examples/quickstart
	go run ./examples/debugclone
	go run ./examples/webfarm -servers 4 -requests 50
	go run ./examples/multideploy -n 8

# staticcheck keeps the public façade lint-clean. The tool is not
# vendored; install with:
#   go install honnef.co/go/tools/cmd/staticcheck@latest
staticcheck:
	@command -v staticcheck >/dev/null 2>&1 || { \
		echo "staticcheck not installed; go install honnef.co/go/tools/cmd/staticcheck@latest"; exit 1; }
	staticcheck ./...

# bench records the perf trajectory: paper-scale figure regenerations
# plus the metadata hot-path microbenchmarks, with -cpu 1,8 so lock
# contention regressions show up. Output lands in bench.txt; compare
# two runs with `benchstat old.txt new.txt`.
bench:
	sh scripts/bench.sh

fuzz:
	go test -run '^$$' -fuzz FuzzBuildVersion -fuzztime 20s ./internal/blob
	go test -run '^$$' -fuzz FuzzCollectLeaves -fuzztime 20s ./internal/blob
	go test -run '^$$' -fuzz FuzzImportArchive -fuzztime 20s .
