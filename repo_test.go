package blobvfs_test

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"blobvfs"
)

func img(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(int(seed) + i*11)
	}
	return b
}

func newRepo(t *testing.T, nodes int, opts ...blobvfs.Option) (*blobvfs.LiveCluster, *blobvfs.Repo) {
	t.Helper()
	fab := blobvfs.NewLiveCluster(nodes)
	repo, err := blobvfs.Open(fab, append([]blobvfs.Option{blobvfs.WithChunkSize(4 << 10)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return fab, repo
}

func TestCreateOpenSnapshotDownload(t *testing.T) {
	fab, repo := newRepo(t, 4)
	fab.Run(func(ctx *blobvfs.Ctx) {
		base := img(64<<10, 1)
		ref, err := repo.Create(ctx, "debian", base)
		if err != nil {
			t.Fatal(err)
		}
		if got, ok := repo.Resolve("debian"); !ok || got != ref {
			t.Fatal("name not registered")
		}
		disk, err := repo.OpenDisk(ctx, ctx.Node(), ref)
		if err != nil {
			t.Fatal(err)
		}
		patch := []byte("configured!")
		if _, err := disk.WriteAt(ctx, patch, 1000); err != nil {
			t.Fatal(err)
		}
		if !disk.Dirty() {
			t.Fatal("disk not dirty after write")
		}
		snap, err := repo.Snapshot(ctx, disk, true)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Image == ref.Image {
			t.Fatal("fresh snapshot did not clone into a new lineage")
		}
		if disk.Current() != snap {
			t.Fatalf("disk mirrors %+v, want %+v", disk.Current(), snap)
		}
		if disk.Origin() != ref {
			t.Fatalf("origin = %+v, want %+v", disk.Origin(), ref)
		}
		repo.Tag("debian-configured", snap)

		// Download the snapshot: base + patch.
		size, err := repo.Size(ctx, snap)
		if err != nil || size != 64<<10 {
			t.Fatalf("Size = %d, %v", size, err)
		}
		buf := make([]byte, size)
		if err := repo.Download(ctx, snap, buf); err != nil {
			t.Fatal(err)
		}
		want := append([]byte(nil), base...)
		copy(want[1000:], patch)
		if !bytes.Equal(buf, want) {
			t.Fatal("downloaded snapshot wrong")
		}
		// The original image is untouched.
		if err := repo.Download(ctx, ref, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, base) {
			t.Fatal("original image modified")
		}
	})
}

func TestSnapshotWithoutForkStaysInLineage(t *testing.T) {
	fab, repo := newRepo(t, 2)
	fab.Run(func(ctx *blobvfs.Ctx) {
		ref, _ := repo.Create(ctx, "a", img(16<<10, 2))
		disk, _ := repo.OpenDisk(ctx, ctx.Node(), ref)
		if _, err := disk.WriteAt(ctx, []byte{9}, 0); err != nil {
			t.Fatal(err)
		}
		snap, err := disk.Commit(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Image != ref.Image || snap.Version != ref.Version+1 {
			t.Fatalf("snapshot = %+v, want same image next version", snap)
		}
	})
}

func TestCloneWithoutOpen(t *testing.T) {
	fab, repo := newRepo(t, 3)
	fab.Run(func(ctx *blobvfs.Ctx) {
		ref, _ := repo.Create(ctx, "a", img(16<<10, 3))
		clone, err := repo.Clone(ctx, ref)
		if err != nil {
			t.Fatal(err)
		}
		if clone.Image == ref.Image {
			t.Fatal("clone did not create a new lineage")
		}
		buf := make([]byte, 16<<10)
		if err := repo.Download(ctx, clone, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, img(16<<10, 3)) {
			t.Fatal("clone contents differ")
		}
	})
}

func TestCreateSynthetic(t *testing.T) {
	fab, repo := newRepo(t, 2)
	fab.Run(func(ctx *blobvfs.Ctx) {
		ref, err := repo.CreateSynthetic(ctx, "big", 8<<20)
		if err != nil {
			t.Fatal(err)
		}
		size, err := repo.Size(ctx, ref)
		if err != nil || size != 8<<20 {
			t.Fatalf("Size = %d, %v", size, err)
		}
		disk, err := repo.OpenDisk(ctx, ctx.Node(), ref, blobvfs.Synthetic())
		if err != nil {
			t.Fatal(err)
		}
		if err := disk.Read(ctx, 0, 1<<20); err != nil {
			t.Fatal(err)
		}
		// Data access on a synthetic disk is a typed failure.
		if _, err := disk.ReadAt(ctx, make([]byte, 16), 0); !errors.Is(err, blobvfs.ErrSynthetic) {
			t.Fatalf("data read on synthetic disk = %v, want ErrSynthetic", err)
		}
	})
}

func TestNamesAndTags(t *testing.T) {
	fab, repo := newRepo(t, 2)
	fab.Run(func(ctx *blobvfs.Ctx) {
		r1, _ := repo.Create(ctx, "x", img(4096, 1))
		repo.Tag("y", r1)
		names := repo.Names()
		if len(names) != 2 {
			t.Fatalf("Names = %v", names)
		}
		if _, ok := repo.Resolve("z"); ok {
			t.Fatal("unknown name resolved")
		}
		repo.Tag("x", blobvfs.Snapshot{Image: r1.Image, Version: r1.Version}) // retag is fine
	})
}

func TestOpenValidation(t *testing.T) {
	fab := blobvfs.NewLiveCluster(4)
	for _, tc := range []struct {
		name string
		opts []blobvfs.Option
	}{
		{"bad chunk size", []blobvfs.Option{blobvfs.WithChunkSize(0)}},
		{"bad replicas", []blobvfs.Option{blobvfs.WithReplicas(9)}},
		{"provider outside cluster", []blobvfs.Option{blobvfs.WithProviders(7)}},
		{"manager outside cluster", []blobvfs.Option{blobvfs.WithManager(11)}},
		{"negative retention", []blobvfs.Option{blobvfs.WithRetention(-1)}},
		{"topology not covering cluster", []blobvfs.Option{blobvfs.WithTopology(
			blobvfs.Topology{Zones: 2, RacksPerZone: 1, NodesPerRack: 3,
				RackBandwidth: 1, ZoneBandwidth: 1})}},
		{"topology zero bandwidth", []blobvfs.Option{blobvfs.WithTopology(
			blobvfs.Topology{Zones: 2, RacksPerZone: 1, NodesPerRack: 2})}},
	} {
		if _, err := blobvfs.Open(fab, tc.opts...); !errors.Is(err, blobvfs.ErrOutOfRange) {
			t.Errorf("%s: Open err = %v, want ErrOutOfRange", tc.name, err)
		}
	}
	if _, err := blobvfs.Open(nil); err == nil {
		t.Error("Open(nil) succeeded")
	}
}

// TestWithTopologyRoundTrip: a topology-aware repo on the live fabric
// stores and returns the same bytes as a flat one — zone-spread
// placement and nearest-first reads change where copies live, never
// what a read returns.
func TestWithTopologyRoundTrip(t *testing.T) {
	fab, repo := newRepo(t, 8,
		blobvfs.WithReplicas(2),
		blobvfs.WithP2P(),
		blobvfs.WithTopology(blobvfs.Topology{
			Zones: 2, RacksPerZone: 2, NodesPerRack: 2,
			RackBandwidth: 1e9, ZoneBandwidth: 1e9,
		}))
	fab.Run(func(ctx *blobvfs.Ctx) {
		want := img(64<<10, 3)
		ref, err := repo.Create(ctx, "base", want)
		if err != nil {
			t.Fatal(err)
		}
		// Read from a node in each zone: both must see identical bytes.
		for _, node := range []blobvfs.NodeID{1, 6} {
			node := node
			task := ctx.Go("read", node, func(rctx *blobvfs.Ctx) {
				got := make([]byte, len(want))
				if err := repo.Download(rctx, ref, got); err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(got, want) {
					t.Errorf("node %d read wrong bytes through aware placement", node)
				}
			})
			ctx.Wait(task)
		}
	})
}

func TestRequestValidation(t *testing.T) {
	fab, repo := newRepo(t, 2)
	fab.Run(func(ctx *blobvfs.Ctx) {
		if _, err := repo.Create(ctx, "e", nil); !errors.Is(err, blobvfs.ErrInvalidWrite) {
			t.Errorf("empty upload = %v, want ErrInvalidWrite", err)
		}
		ref, _ := repo.Create(ctx, "a", img(4096, 1))
		if err := repo.Download(ctx, ref, make([]byte, 10)); !errors.Is(err, blobvfs.ErrOutOfRange) {
			t.Errorf("short download buffer = %v, want ErrOutOfRange", err)
		}
		if _, err := repo.Size(ctx, blobvfs.Snapshot{Image: 99, Version: 1}); !errors.Is(err, blobvfs.ErrNotFound) {
			t.Errorf("unknown image = %v, want ErrNotFound", err)
		}
	})
}

func TestDefaultOptions(t *testing.T) {
	fab := blobvfs.NewLiveCluster(5)
	repo, err := blobvfs.Open(fab)
	if err != nil {
		t.Fatal(err)
	}
	fab.Run(func(ctx *blobvfs.Ctx) {
		ref, err := repo.Create(ctx, "d", img(300<<10, 7))
		if err != nil {
			t.Fatal(err)
		}
		// Default chunk size 256 KB: a 300 KB image occupies 2 chunks.
		inf, err := repo.System().VM.Info(ctx, ref.Image)
		if err != nil {
			t.Fatal(err)
		}
		if inf.ChunkSize != 256<<10 || inf.Chunks() != 2 {
			t.Fatalf("geometry = %+v", inf)
		}
	})
}

// TestTypedErrorsEndToEnd: the sentinel taxonomy survives every layer
// crossing — errors raised deep in internal/blob and internal/mirror
// match the façade's re-exported values through errors.Is.
func TestTypedErrorsEndToEnd(t *testing.T) {
	fab, repo := newRepo(t, 3)
	fab.Run(func(ctx *blobvfs.Ctx) {
		ref, err := repo.Create(ctx, "base", img(32<<10, 4))
		if err != nil {
			t.Fatal(err)
		}
		disk, err := repo.OpenDisk(ctx, ctx.Node(), ref)
		if err != nil {
			t.Fatal(err)
		}

		// Out-of-range access through the mirror layer.
		if _, err := disk.ReadAt(ctx, make([]byte, 16), disk.Size()); !errors.Is(err, blobvfs.ErrOutOfRange) {
			t.Errorf("read past end = %v, want ErrOutOfRange", err)
		}
		// Missing objects through the version manager.
		if _, err := repo.OpenDisk(ctx, ctx.Node(), blobvfs.Snapshot{Image: 42, Version: 1}); !errors.Is(err, blobvfs.ErrNotFound) {
			t.Errorf("open unknown image = %v, want ErrNotFound", err)
		}
		var nf *blobvfs.NotFoundError
		if _, err := repo.Versions(ctx, 42); !errors.As(err, &nf) {
			t.Errorf("versions of unknown image = %v, want *NotFoundError", err)
		}
		// Pinned version: the open disk pins what it mirrors.
		if err := repo.Retire(ctx, ref); !errors.Is(err, blobvfs.ErrVersionPinned) {
			t.Errorf("retire of mounted snapshot = %v, want ErrVersionPinned", err)
		}
		var pe *blobvfs.PinnedError
		if err := repo.Retire(ctx, ref); !errors.As(err, &pe) {
			t.Errorf("retire of mounted snapshot = %v, want *PinnedError", err)
		} else if pe.ID != ref.Image || pe.V != ref.Version {
			t.Errorf("pinned detail = %d@%d, want %d@%d", pe.ID, pe.V, ref.Image, ref.Version)
		}
		// Retired version: close, retire, reopen.
		if err := disk.Close(ctx); err != nil {
			t.Fatal(err)
		}
		if err := repo.Retire(ctx, ref); err != nil {
			t.Fatalf("retire of unpinned snapshot: %v", err)
		}
		if _, err := repo.OpenDisk(ctx, ctx.Node(), ref); !errors.Is(err, blobvfs.ErrVersionRetired) {
			t.Errorf("open retired snapshot = %v, want ErrVersionRetired", err)
		}
		// Operations on a closed disk.
		if _, err := disk.Commit(ctx); !errors.Is(err, blobvfs.ErrClosed) {
			t.Errorf("commit on closed disk = %v, want ErrClosed", err)
		}
		// Wrong-node open: a disk is strictly node-local.
		if _, err := repo.OpenDisk(ctx, 2, ref); !errors.Is(err, blobvfs.ErrWrongNode) {
			t.Errorf("open for another node = %v, want ErrWrongNode", err)
		}
	})
}

// TestVersionsAndRetention: Versions lists live versions only, and
// RetireOld applies the keep-last-K window to a disk's lineage.
func TestVersionsAndRetention(t *testing.T) {
	fab, repo := newRepo(t, 2, blobvfs.WithRetention(2))
	fab.Run(func(ctx *blobvfs.Ctx) {
		ref, _ := repo.Create(ctx, "a", img(16<<10, 5))
		disk, err := repo.OpenDisk(ctx, ctx.Node(), ref)
		if err != nil {
			t.Fatal(err)
		}
		// No dirty chunks yet, so the fork is just the O(1) CLONE: the
		// disk now mirrors v1 of its own lineage.
		snap, err := repo.Snapshot(ctx, disk, true)
		if err != nil {
			t.Fatal(err)
		}
		// Rewrite the same hot chunk each cycle, so every retired
		// version's copy of it becomes exclusive garbage.
		for i := 0; i < 3; i++ {
			if _, err := disk.WriteAt(ctx, []byte{byte(i + 1)}, 0); err != nil {
				t.Fatal(err)
			}
			if _, err := disk.Commit(ctx); err != nil {
				t.Fatal(err)
			}
		}
		vs, err := repo.Versions(ctx, snap.Image)
		if err != nil || len(vs) != 4 {
			t.Fatalf("Versions = %v, %v; want 4 live", vs, err)
		}
		// keep <= 0 falls back to WithRetention(2): of v1..v4, v3 and v4
		// stay, v1 and v2 retire.
		n, err := repo.RetireOld(ctx, disk, 0)
		if err != nil || n != 2 {
			t.Fatalf("RetireOld = %d, %v; want 2", n, err)
		}
		vs, err = repo.Versions(ctx, snap.Image)
		if err != nil || len(vs) != 2 {
			t.Fatalf("Versions after retention = %v, %v; want [3 4]", vs, err)
		}
		rep, err := repo.GC(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if rep.FreedChunks == 0 {
			t.Fatal("GC reclaimed nothing after retiring 3 versions")
		}
	})
}

// TestDiskIOStandardInterfaces: the std-io binding follows io
// conventions — ReadFull, SectionReader, Copy, Seek and EOF behavior.
func TestDiskIOStandardInterfaces(t *testing.T) {
	fab, repo := newRepo(t, 2)
	fab.Run(func(ctx *blobvfs.Ctx) {
		base := img(20<<10, 6)
		ref, _ := repo.Create(ctx, "a", base)
		disk, err := repo.OpenDisk(ctx, ctx.Node(), ref)
		if err != nil {
			t.Fatal(err)
		}
		f := disk.IO(ctx)

		// io.ReaderAt via io.SectionReader.
		sec := io.NewSectionReader(f, 1000, 500)
		got := make([]byte, 500)
		if _, err := io.ReadFull(sec, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, base[1000:1500]) {
			t.Fatal("section read wrong")
		}

		// io.Reader + io.Copy drains the whole image.
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			t.Fatal(err)
		}
		var sink bytes.Buffer
		n, err := io.Copy(&sink, f)
		if err != nil || n != int64(len(base)) {
			t.Fatalf("Copy = %d, %v", n, err)
		}
		if !bytes.Equal(sink.Bytes(), base) {
			t.Fatal("copied image differs")
		}

		// Reads at and past the end follow io.ReaderAt EOF rules.
		if _, err := f.ReadAt(make([]byte, 1), int64(len(base))); err != io.EOF {
			t.Fatalf("read at end = %v, want io.EOF", err)
		}
		if n, err := f.ReadAt(make([]byte, 100), int64(len(base))-50); n != 50 || err != io.EOF {
			t.Fatalf("read crossing end = %d, %v; want 50, io.EOF", n, err)
		}

		// io.WriterAt, then read back.
		if _, err := f.WriteAt([]byte("hello"), 2000); err != nil {
			t.Fatal(err)
		}
		got = make([]byte, 5)
		if _, err := f.ReadAt(got, 2000); err != nil {
			t.Fatal(err)
		}
		if string(got) != "hello" {
			t.Fatal("write-read through std io failed")
		}
		// Writes cannot grow the disk.
		if _, err := f.WriteAt([]byte("x"), int64(len(base))); !errors.Is(err, blobvfs.ErrOutOfRange) {
			t.Fatalf("write past end = %v, want ErrOutOfRange", err)
		}

		// io.Closer closes the underlying disk.
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := disk.ReadAt(ctx, got, 0); !errors.Is(err, blobvfs.ErrClosed) {
			t.Fatalf("read after Close = %v, want ErrClosed", err)
		}
	})
}

// TestForeignDiskRejected: a disk opened on one repo cannot drive
// lifecycle operations on another — image IDs are per-repository, so
// acting on a foreign disk would silently hit an unrelated image.
func TestForeignDiskRejected(t *testing.T) {
	fab := blobvfs.NewLiveCluster(2)
	repoA, err := blobvfs.Open(fab, blobvfs.WithChunkSize(4<<10))
	if err != nil {
		t.Fatal(err)
	}
	repoB, err := blobvfs.Open(fab, blobvfs.WithChunkSize(4<<10))
	if err != nil {
		t.Fatal(err)
	}
	fab.Run(func(ctx *blobvfs.Ctx) {
		ref, _ := repoB.Create(ctx, "b", img(8<<10, 3))
		disk, err := repoB.OpenDisk(ctx, ctx.Node(), ref)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := repoA.Snapshot(ctx, disk, false); err == nil {
			t.Error("foreign disk accepted by Snapshot")
		}
		if _, err := repoA.RetireOld(ctx, disk, 1); err == nil {
			t.Error("foreign disk accepted by RetireOld")
		}
	})
}

// TestRetireOldSparesUnforkedLineage: retention through RetireOld
// never touches a lineage the disk did not fork into — in-lineage
// commits on a shared image leave its older versions alone, even when
// they fall outside the keep window.
func TestRetireOldSparesUnforkedLineage(t *testing.T) {
	fab, repo := newRepo(t, 2)
	fab.Run(func(ctx *blobvfs.Ctx) {
		ref, _ := repo.Create(ctx, "shared", img(16<<10, 9))
		disk, err := repo.OpenDisk(ctx, ctx.Node(), ref)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			if _, err := disk.WriteAt(ctx, []byte{byte(i)}, 0); err != nil {
				t.Fatal(err)
			}
			if _, err := disk.Commit(ctx); err != nil {
				t.Fatal(err)
			}
		}
		n, err := repo.RetireOld(ctx, disk, 1)
		if err != nil || n != 0 {
			t.Fatalf("RetireOld on unforked shared lineage = %d, %v; want 0 (no-op)", n, err)
		}
		vs, err := repo.Versions(ctx, ref.Image)
		if err != nil || len(vs) != 3 {
			t.Fatalf("Versions = %v, %v; want all 3 still live", vs, err)
		}
	})
}

// TestShareSingleCohort: a repo carries at most one sharing cohort —
// a Share for a second image is refused instead of silently rewiring
// the first cohort's modules, and re-Share of the registered image
// stays true.
func TestShareSingleCohort(t *testing.T) {
	fab, repo := newRepo(t, 4, blobvfs.WithP2P())
	fab.Run(func(ctx *blobvfs.Ctx) {
		a, _ := repo.CreateSynthetic(ctx, "a", 64<<10)
		b, _ := repo.CreateSynthetic(ctx, "b", 64<<10)
		nodes := []blobvfs.NodeID{0, 1, 2}
		if !repo.Share(ctx, a.Image, nodes) {
			t.Fatal("first Share refused")
		}
		if repo.Share(ctx, b.Image, nodes) {
			t.Fatal("second image joined the repo's cohort slot")
		}
		if !repo.Share(ctx, a.Image, nodes) {
			t.Fatal("re-Share of the registered image refused")
		}
		if _, ok := repo.SharingStats(a.Image); !ok {
			t.Fatal("no stats for the registered cohort")
		}
		if _, ok := repo.SharingStats(b.Image); ok {
			t.Fatal("stats reported for a refused cohort")
		}
	})
}

// TestShareWithoutP2P: Share is an inert no-op without WithP2P.
func TestShareWithoutP2P(t *testing.T) {
	fab, repo := newRepo(t, 2)
	fab.Run(func(ctx *blobvfs.Ctx) {
		a, _ := repo.CreateSynthetic(ctx, "a", 64<<10)
		if repo.Share(ctx, a.Image, []blobvfs.NodeID{0, 1}) {
			t.Fatal("Share active without WithP2P")
		}
	})
}

// TestCloseIdempotent: double and concurrent Close on Disk and Repo
// must be safe — the snapshot pin is released exactly once and the
// modification metadata written exactly once.
func TestCloseIdempotent(t *testing.T) {
	fab, repo := newRepo(t, 2)
	fab.Run(func(ctx *blobvfs.Ctx) {
		ref, _ := repo.Create(ctx, "a", img(16<<10, 7))
		disk, err := repo.OpenDisk(ctx, ctx.Node(), ref)
		if err != nil {
			t.Fatal(err)
		}
		if pins := repo.System().VM.Pins(ref.Image, ref.Version); pins != 1 {
			t.Fatalf("pins after open = %d, want 1", pins)
		}
		// A second disk on the same snapshot holds its own pin; closing
		// the first one twice must release exactly one.
		if _, err := repo.OpenDisk(ctx, 1, ref); err == nil {
			t.Fatal("open for node 1 from node 0 must fail (wrong node)")
		}
		done := ctx.Go("peer", 1, func(cc *blobvfs.Ctx) {
			d, err := repo.OpenDisk(cc, 1, ref)
			if err != nil {
				t.Errorf("open on node 1: %v", err)
				return
			}
			d.Close(cc)
			if d, err = repo.OpenDisk(cc, 1, ref); err != nil {
				t.Errorf("reopen on node 1: %v", err)
			}
			_ = d // left open: its pin must survive the other disk's closes
		})
		ctx.Wait(done)
		if pins := repo.System().VM.Pins(ref.Image, ref.Version); pins != 2 {
			t.Fatalf("pins after second open = %d, want 2", pins)
		}

		// Concurrent + repeated close of disk 1.
		tasks := []blobvfs.Task{
			ctx.Go("close-a", 0, func(cc *blobvfs.Ctx) { disk.Close(cc) }),
			ctx.Go("close-b", 0, func(cc *blobvfs.Ctx) { disk.Close(cc) }),
		}
		ctx.WaitAll(tasks)
		if err := disk.Close(ctx); err != nil {
			t.Fatalf("third close: %v", err)
		}
		if pins := repo.System().VM.Pins(ref.Image, ref.Version); pins != 1 {
			t.Fatalf("pins after triple close of first disk = %d, want 1 (double-unpin!)", pins)
		}

		// Repo.Close is idempotent too, and gates lifecycle calls.
		if err := repo.Close(); err != nil {
			t.Fatal(err)
		}
		if err := repo.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := repo.Create(ctx, "late", img(4096, 8)); !errors.Is(err, blobvfs.ErrClosed) {
			t.Fatalf("create after repo close = %v, want ErrClosed", err)
		}
		if _, err := repo.OpenDisk(ctx, 0, ref); !errors.Is(err, blobvfs.ErrClosed) {
			t.Fatalf("open after repo close = %v, want ErrClosed", err)
		}
	})
}
