// Command vmdeploy regenerates the paper's evaluation figures on the
// simulated cluster and prints them as aligned text tables.
//
// Usage:
//
//	vmdeploy [-quick] [-seed N] [-sweep 1,10,30,...] fig4|fig5|fig6|fig7|fig8|flash|churn|degraded|crosszone|multisnap|metaoutage|sync|ablations|all
//
// fig4 prints all four panels of Fig. 4 (multideployment), fig5 both
// panels of Fig. 5 (multisnapshotting), fig6/fig7 the Bonnie++
// comparison, fig8 the Monte Carlo application, flash the flash-crowd
// scenario with p2p sharing off/on, churn the snapshot-lifecycle
// scenario (keep-last-K retention + garbage collection; see -cycles
// and -keep), degraded the flash crowd rerun while -kill providers
// fail mid-deployment (healthy baseline row included), crosszone the
// flash crowd spread over 3 availability zones with flat vs
// topology-aware policy (docs/topology.md), multisnap the concurrent
// commit of all instances against a small provider pool with the
// unbatched vs batched write path (docs/perf.md), metaoutage the flash
// crowd with replicated metadata (WithMetaReplicas) while -kill
// metadata providers and one compute rack fail mid-run, against a
// healthy baseline at the same replication (docs/faults.md), sync the
// disconnected-site workflow: an upstream lineage shipped to a
// downstream repository on a disjoint provider pool as one full
// archive plus per-commit deltas (docs/sync.md). -quick
// runs the
// scaled-down parameter set (shapes preserved, absolute values not
// comparable to the paper).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"blobvfs/internal/experiments"
	"blobvfs/internal/metrics"
	"blobvfs/internal/workloads"
)

func main() {
	quick := flag.Bool("quick", false, "scaled-down parameters (fast; shapes only)")
	seed := flag.Int64("seed", 0, "override the experiment seed")
	sweepArg := flag.String("sweep", "", "comma-separated instance counts (default 1,10,30,50,70,90,110)")
	instances := flag.Int("instances", 0, "instance count for fig8/flash/churn/degraded (defaults 100/256/32/256, or 16/64/8/64 with -quick)")
	cycles := flag.Int("cycles", 8, "snapshot cycles for churn")
	keep := flag.Int("keep", 2, "keep-last-K retention window for churn (0 = no retention)")
	kill := flag.Int("kill", 8, "providers killed mid-run for degraded and metaoutage")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: vmdeploy [flags] fig4|fig5|fig6|fig7|fig8|flash|churn|degraded|crosszone|multisnap|metaoutage|sync|ablations|all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	target := flag.Arg(0)

	p := experiments.Default()
	fig8N := 100
	flashN := 256
	churnN := 32
	crossN := 60 // per zone
	multiN := 256
	if *quick {
		p = experiments.Quick()
		p.MaxInstances = 24
		fig8N = 16
		flashN = 64
		churnN = 8
		crossN = 20
		multiN = 64
	}
	degradedN := flashN
	if *seed != 0 {
		p.Seed = *seed
	}
	if *instances > 0 {
		fig8N = *instances
		flashN = *instances
		churnN = *instances
		degradedN = *instances
		crossN = (*instances + 2) / 3 // total crowd over the 3 zones
		multiN = *instances
	}
	sweep := experiments.DefaultSweep()
	if *quick {
		sweep = []int{1, 4, 8, 16, 24}
	}
	if *sweepArg != "" {
		sweep = nil
		for _, s := range strings.Split(*sweepArg, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "vmdeploy: bad sweep entry %q\n", s)
				os.Exit(2)
			}
			sweep = append(sweep, n)
		}
	}

	run := func(name string, fn func() []*metrics.Table) {
		start := time.Now()
		tables := fn()
		for _, t := range tables {
			t.Fprint(os.Stdout)
			fmt.Println()
		}
		fmt.Printf("(%s completed in %s)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	fig4 := func() []*metrics.Table { return experiments.RunFig4(p, sweep).Tables() }
	fig5 := func() []*metrics.Table { return experiments.RunFig5(p, sweep).Tables() }
	fig67 := func() []*metrics.Table {
		return experiments.RunFig67(workloads.DefaultBonnieConfig()).Tables()
	}
	fig8 := func() []*metrics.Table {
		return []*metrics.Table{experiments.RunFig8(p, fig8N).Table()}
	}
	flash := func() []*metrics.Table {
		off := experiments.RunFlashCrowd(p, experiments.FlashCrowdConfig{Instances: flashN})
		on := experiments.RunFlashCrowd(p, experiments.FlashCrowdConfig{Instances: flashN, Sharing: true})
		return []*metrics.Table{experiments.FlashCrowdTable([]experiments.FlashCrowdPoint{off, on})}
	}
	churn := func() []*metrics.Table {
		pt := experiments.RunChurn(p, experiments.ChurnConfig{
			Instances: churnN,
			Cycles:    *cycles,
			KeepLast:  *keep,
		})
		tables := []*metrics.Table{experiments.ChurnTable(pt)}
		if *keep > 0 {
			// The unbounded baseline for contrast: same churn, no
			// retention, nothing ever reclaimed.
			base := experiments.RunChurn(p, experiments.ChurnConfig{
				Instances: churnN,
				Cycles:    *cycles,
			})
			tables = append(tables, experiments.ChurnTable(base))
		}
		return tables
	}
	degraded := func() []*metrics.Table {
		const degradedProviders = 16 // RunDegraded's default pool size
		if *kill < 0 || *kill >= degradedProviders {
			fmt.Fprintf(os.Stderr, "vmdeploy: -kill %d out of range [0,%d)\n", *kill, degradedProviders)
			os.Exit(2)
		}
		dc := experiments.DegradedConfig{Instances: degradedN, Sharing: true}
		healthy := experiments.RunDegraded(p, dc)
		dc.Kill = *kill
		hit := experiments.RunDegraded(p, dc)
		return []*metrics.Table{experiments.DegradedTable([]experiments.DegradedPoint{healthy, hit})}
	}
	crosszone := func() []*metrics.Table {
		var pts []experiments.CrossZonePoint
		for _, sharing := range []bool{false, true} {
			for _, aware := range []bool{false, true} {
				pts = append(pts, experiments.RunCrossZone(p, experiments.CrossZoneConfig{
					InstancesPerZone: crossN,
					Aware:            aware,
					Sharing:          sharing,
				}))
			}
		}
		return []*metrics.Table{experiments.CrossZoneTable(pts)}
	}
	metaoutage := func() []*metrics.Table {
		const metaProviders = 16 // RunMetaOutage's default pool size
		if *kill < 0 || *kill >= metaProviders {
			fmt.Fprintf(os.Stderr, "vmdeploy: -kill %d out of range [0,%d)\n", *kill, metaProviders)
			os.Exit(2)
		}
		mc := experiments.MetaOutageConfig{Instances: flashN, Sharing: true}
		healthy := experiments.RunMetaOutage(p, mc)
		mc.KillMeta = *kill
		mc.KillRack = true
		outage := experiments.RunMetaOutage(p, mc)
		return []*metrics.Table{experiments.MetaOutageTable([]experiments.MetaOutagePoint{healthy, outage})}
	}
	multisnap := func() []*metrics.Table {
		var pts []experiments.MultisnapshotPoint
		for _, batched := range []bool{false, true} {
			pts = append(pts, experiments.RunMultisnapshot(p, experiments.MultisnapshotConfig{
				Instances: multiN,
				Batched:   batched,
			}))
		}
		return []*metrics.Table{experiments.MultisnapshotTable(pts)}
	}
	syncScenario := func() []*metrics.Table {
		pt := experiments.RunSync(p, experiments.SyncConfig{})
		return []*metrics.Table{experiments.SyncTable(pt)}
	}
	ablations := func() []*metrics.Table {
		n := 16
		if !*quick {
			n = 50
		}
		cs := experiments.RunChunkSizeAblation(p, n, []int{64 << 10, 256 << 10, 1 << 20, 4 << 20})
		rep := experiments.RunReplicationAblation(p, n, []int{1, 2, 3})
		return []*metrics.Table{experiments.ChunkSizeTable(cs), experiments.ReplicationTable(rep)}
	}

	switch target {
	case "fig4", "fig4a", "fig4b", "fig4c", "fig4d":
		run("fig4", fig4)
	case "fig5", "fig5a", "fig5b":
		run("fig5", fig5)
	case "fig6", "fig7", "fig67":
		run("fig6/7", fig67)
	case "fig8":
		run("fig8", fig8)
	case "flash":
		run("flash", flash)
	case "churn":
		run("churn", churn)
	case "degraded":
		run("degraded", degraded)
	case "crosszone":
		run("crosszone", crosszone)
	case "multisnap":
		run("multisnap", multisnap)
	case "metaoutage":
		run("metaoutage", metaoutage)
	case "sync":
		run("sync", syncScenario)
	case "ablations":
		run("ablations", ablations)
	case "all":
		run("fig4", fig4)
		run("fig5", fig5)
		run("fig6/7", fig67)
		run("fig8", fig8)
		run("flash", flash)
		run("churn", churn)
		run("degraded", degraded)
		run("crosszone", crosszone)
		run("ablations", ablations)
		run("multisnap", multisnap)
		run("metaoutage", metaoutage)
		run("sync", syncScenario)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
