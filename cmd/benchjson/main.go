// Command benchjson distills `go test -bench` output into a small
// machine-readable artifact. scripts/bench.sh pipes the benchmark run
// into bench.txt and then invokes this command once per family:
//
//   - family flashcrowd → BENCH_flashcrowd.json: every
//     flash-crowd-family benchmark line (flash, degraded, crosszone)
//     with its ns/op and custom metrics, plus a cross_zone summary
//     with the flat and aware interconnect byte counts and the
//     reduction factor topology awareness achieved.
//   - family multisnapshot → BENCH_multisnapshot.json: the
//     multisnapshot write-path benchmark lines, plus a multisnapshot
//     summary with the unbatched and batched write RPCs per commit
//     round, the reduction factor, and both arms' ns/op.
//   - family metaoutage → BENCH_metaoutage.json: the metadata-outage
//     benchmark lines, plus a meta_outage summary with both arms'
//     completion times, the outage delta, and the metadata failover,
//     re-replication and failed-descent counts.
//   - family export → BENCH_export.json: the differential-sync
//     benchmark line, plus an export summary with the average delta
//     and full-image byte counts, the reduction factor, and the
//     shipped and import-side-deduplicated chunk counts.
//   - family scale → BENCH_scale.json: the flash-crowd scale sweep
//     (BenchmarkFlashCrowdScale plus BenchmarkFlashCrowd10k), with a
//     scale summary charting instances vs wall-clock ns/op and
//     allocs/op — the trajectory that shows whether the simulator
//     itself keeps up with paper-scale ×100 crowds.
//
// Usage: benchjson [-in bench.txt] [-out BENCH_<family>.json] [-family flashcrowd|multisnapshot|metaoutage|export|scale]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// benchLine is one parsed benchmark result: the iteration count and
// every "value unit" pair, ns/op and custom metrics alike, keyed by
// unit.
type benchLine struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// crossZone is the headline summary the topology work is judged by:
// bytes that crossed a zone interconnect, flat policy vs aware, and
// the reduction factor (cpu=1 rows; the simulation is deterministic,
// so the cpu=8 rows carry identical values).
type crossZone struct {
	FlatBytes      float64 `json:"flat_bytes"`
	AwareBytes     float64 `json:"aware_bytes"`
	ReductionX     float64 `json:"reduction_x"`
	FlatProvReads  float64 `json:"flat_provider_reads"`
	AwareProvReads float64 `json:"aware_provider_reads"`
}

// multisnapshot is the headline summary of the write-path batching:
// provider write RPCs (chunk Puts + metadata Puts) per commit round in
// the unbatched and batched arms, the reduction factor, and both arms'
// wall-clock ns/op (cpu=1 rows; the simulation is deterministic).
type multisnapshot struct {
	UnbatchedWriteRPCs float64 `json:"unbatched_write_rpcs"`
	BatchedWriteRPCs   float64 `json:"batched_write_rpcs"`
	ReductionX         float64 `json:"reduction_x"`
	UnbatchedNsOp      float64 `json:"unbatched_ns_op"`
	BatchedNsOp        float64 `json:"batched_ns_op"`
}

// exportSummary is the headline summary of the differential-sync
// subsystem: bytes an average delta round ships vs re-shipping the
// full image, the reduction factor (gated at 5x by the benchmark
// itself), and how many shipped chunks the importing side deduplicated
// into storage it already had.
type exportSummary struct {
	DeltaBytes    float64 `json:"delta_bytes"`
	FullBytes     float64 `json:"full_bytes"`
	ReductionX    float64 `json:"reduction_x"`
	ShippedChunks float64 `json:"shipped_chunks"`
	DedupedChunks float64 `json:"deduped_chunks"`
}

// scalePoint is one instance-count point of the flash-crowd scale
// sweep; scaleSummary orders them by crowd size so the trajectory is
// directly plottable.
type scalePoint struct {
	Instances   float64 `json:"instances"`
	Booted      float64 `json:"booted"`
	NsOp        float64 `json:"ns_op"`
	AllocsOp    float64 `json:"allocs_op"`
	BytesOp     float64 `json:"bytes_op"`
	SimSteps    float64 `json:"sim_steps"`
	CompletionS float64 `json:"completion_s"`
}

type scaleSummary struct {
	Points []scalePoint `json:"points"`
}

// metaOutage is the headline summary of control-plane resilience:
// flash-crowd completion with a healthy control plane vs one that lost
// half its metadata providers plus a compute rack mid-run, the descents
// the outage forced down the replica ring, the tree nodes the repair
// sweep restored, and the failed descents (must be zero — the outage
// costs time, never a lookup).
type metaOutage struct {
	HealthyCompletionS float64 `json:"healthy_completion_s"`
	OutageCompletionS  float64 `json:"outage_completion_s"`
	CompletionDeltaS   float64 `json:"completion_delta_s"`
	MetaFailovers      float64 `json:"meta_failovers"`
	MetaRereplicated   float64 `json:"meta_rereplicated"`
	FailedDescents     float64 `json:"failed_descents"`
}

func main() {
	in := flag.String("in", "bench.txt", "benchmark output to parse")
	family := flag.String("family", "flashcrowd", "benchmark family to distill: flashcrowd or multisnapshot")
	out := flag.String("out", "", "artifact to write (default BENCH_<family>.json)")
	flag.Parse()
	var prefixes, excludes []string
	switch *family {
	case "flashcrowd":
		prefixes = []string{"BenchmarkFlashCrowd"}
		// The outage and scale sweeps are their own families.
		excludes = []string{"BenchmarkFlashCrowdMetaOutage", "BenchmarkFlashCrowdScale", "BenchmarkFlashCrowd10k"}
	case "multisnapshot":
		prefixes = []string{"BenchmarkMultisnapshot"}
	case "metaoutage":
		prefixes = []string{"BenchmarkFlashCrowdMetaOutage"}
	case "export":
		prefixes = []string{"BenchmarkExportImport"}
	case "scale":
		prefixes = []string{"BenchmarkFlashCrowdScale", "BenchmarkFlashCrowd10k"}
	default:
		fmt.Fprintf(os.Stderr, "benchjson: unknown family %q\n", *family)
		os.Exit(2)
	}
	if *out == "" {
		*out = "BENCH_" + *family + ".json"
	}

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()

	benches := map[string]benchLine{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, bl, ok := parseLine(sc.Text())
		if !ok || !matches(name, prefixes, excludes) {
			continue
		}
		benches[name] = bl
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no %s benchmark lines in %s\n", *family, *in)
		os.Exit(1)
	}

	doc := struct {
		Benchmarks    map[string]benchLine `json:"benchmarks"`
		CrossZone     *crossZone           `json:"cross_zone,omitempty"`
		Multisnapshot *multisnapshot       `json:"multisnapshot,omitempty"`
		MetaOutage    *metaOutage          `json:"meta_outage,omitempty"`
		Export        *exportSummary       `json:"export,omitempty"`
		Scale         *scaleSummary        `json:"scale,omitempty"`
	}{Benchmarks: benches}

	// Summary benchmark names are unsuffixed on the cpu=1 run (go test
	// only appends -N for GOMAXPROCS > 1).
	flat, okF := benches["BenchmarkFlashCrowdCrossZone/flat"]
	aware, okA := benches["BenchmarkFlashCrowdCrossZone/aware"]
	if okF && okA {
		cz := &crossZone{
			FlatBytes:      flat.Metrics["cross-zone-MB"] * 1e6,
			AwareBytes:     aware.Metrics["cross-zone-MB"] * 1e6,
			FlatProvReads:  flat.Metrics["provider-reads"],
			AwareProvReads: aware.Metrics["provider-reads"],
		}
		if cz.AwareBytes > 0 {
			cz.ReductionX = cz.FlatBytes / cz.AwareBytes
		}
		doc.CrossZone = cz
	}
	unb, okU := benches["BenchmarkMultisnapshot1024/unbatched"]
	bat, okB := benches["BenchmarkMultisnapshot1024/batched"]
	if okU && okB {
		ms := &multisnapshot{
			UnbatchedWriteRPCs: unb.Metrics["write-RPCs/round"],
			BatchedWriteRPCs:   bat.Metrics["write-RPCs/round"],
			UnbatchedNsOp:      unb.Metrics["ns/op"],
			BatchedNsOp:        bat.Metrics["ns/op"],
		}
		if ms.BatchedWriteRPCs > 0 {
			ms.ReductionX = ms.UnbatchedWriteRPCs / ms.BatchedWriteRPCs
		}
		doc.Multisnapshot = ms
	}
	if exp, ok := benches["BenchmarkExportImport"]; ok {
		doc.Export = &exportSummary{
			DeltaBytes:    exp.Metrics["delta-MB"] * 1e6,
			FullBytes:     exp.Metrics["full-MB"] * 1e6,
			ReductionX:    exp.Metrics["reduction-x"],
			ShippedChunks: exp.Metrics["shipped-chunks"],
			DedupedChunks: exp.Metrics["deduped-chunks"],
		}
	}
	if *family == "scale" {
		// cpu=1 rows carry unsuffixed names; collect them in crowd-size
		// order. The 10k point is absent from -short (CI) runs, so the
		// summary simply holds the points that ran.
		sum := &scaleSummary{}
		for _, name := range []string{
			"BenchmarkFlashCrowdScale/inst-256",
			"BenchmarkFlashCrowdScale/inst-1024",
			"BenchmarkFlashCrowd10k",
		} {
			bl, ok := benches[name]
			if !ok {
				continue
			}
			sum.Points = append(sum.Points, scalePoint{
				Instances:   bl.Metrics["instances"],
				Booted:      bl.Metrics["booted"],
				NsOp:        bl.Metrics["ns/op"],
				AllocsOp:    bl.Metrics["allocs/op"],
				BytesOp:     bl.Metrics["B/op"],
				SimSteps:    bl.Metrics["sim-steps"],
				CompletionS: bl.Metrics["completion-s"],
			})
		}
		doc.Scale = sum
	}
	if *family == "metaoutage" {
		healthy, okH := benches["BenchmarkFlashCrowdMetaOutage/healthy"]
		hit, okO := benches["BenchmarkFlashCrowdMetaOutage/outage"]
		if okH && okO {
			doc.MetaOutage = &metaOutage{
				HealthyCompletionS: healthy.Metrics["completion-s"],
				OutageCompletionS:  hit.Metrics["completion-s"],
				CompletionDeltaS:   hit.Metrics["completion-s"] - healthy.Metrics["completion-s"],
				MetaFailovers:      hit.Metrics["meta-failovers"],
				MetaRereplicated:   hit.Metrics["meta-re-replicated"],
				FailedDescents:     hit.Metrics["failed-descents"],
			}
		}
	}

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %s (%d benchmarks)\n", *out, len(benches))
}

// matches reports whether name starts with any of the prefixes and
// none of the excludes.
func matches(name string, prefixes, excludes []string) bool {
	for _, x := range excludes {
		if strings.HasPrefix(name, x) {
			return false
		}
	}
	for _, p := range prefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// parseLine parses one `BenchmarkName   N   v1 unit1   v2 unit2 ...`
// result line; anything else (headers, PASS, ok) reports !ok.
func parseLine(line string) (string, benchLine, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", benchLine{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", benchLine{}, false
	}
	bl := benchLine{Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", benchLine{}, false
		}
		bl.Metrics[fields[i+1]] = v
	}
	return fields[0], bl, true
}
